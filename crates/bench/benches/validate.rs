//! The parallel-validation-engine benchmark: full-pipeline wall time at
//! several worker counts over a generated corpus, emitting
//! `BENCH_validate.json` (override the path with `CRELLVM_BENCH_OUT`).
//!
//! Reported per worker count: wall time, the four Fig 6/8 phase columns
//! (Orig/PCal/I-O/PCheck) with the I-O phase split into encode and decode,
//! speedup versus one worker, and steal totals. The `proof_io` section
//! compares the three wire formats (JSON, binary v1, binary v2) on the
//! same proof corpus — total bytes plus encode/decode time — and the
//! `cache` section times a cold versus a warm `--cache-dir`-style run.
//!
//! The ≥2× speedup target assumes ≥4 available cores; the JSON records
//! `available_parallelism` so results from throttled CI runners (often a
//! single core, where speedup is necessarily ~1×) read correctly.
//!
//! Every timed section runs `CRELLVM_BENCH_REPS` times (default 3) and
//! reports the median rep, shrinking scheduler-jitter noise before the
//! regression sentinel sees it. Besides `BENCH_validate.json` the run
//! appends a flat [`HistoryRecord`] to `BENCH_history.jsonl` (override
//! with `CRELLVM_BENCH_HISTORY`; provenance from `CRELLVM_GIT_SHA` /
//! `CRELLVM_BENCH_TIMESTAMP`) and times a small fuzz campaign into
//! `BENCH_fuzz.json` for the oracle-throughput (exec/s) axis, alongside
//! a pure-interpreter microbench comparing the tree-walk and bytecode
//! tiers (`fuzz.exec_per_s.tree` / `fuzz.exec_per_s.bc`).

use crellvm_bench::history::{self, HistoryRecord};
use crellvm_core::{proof_from_bytes, proof_from_json, proof_to_bytes, proof_to_json, ProofUnit};
use crellvm_core::{CheckerConfig, ValidationCache};
use crellvm_fuzz::{run_campaign, CampaignConfig};
use crellvm_gen::{generate_module, GenConfig};
use crellvm_interp::{compile_module, run_main_tiered, RunConfig, Tier};
use crellvm_passes::{
    default_jobs, run_pipeline_parallel, run_validated_pass_parallel, CodecScratch,
    ParallelOptions, PassConfig, PipelineReport, ProofFormat,
};
use crellvm_telemetry::{Snapshot, Telemetry};
use serde::Serialize;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

#[derive(Serialize)]
struct PhasesMs {
    orig: f64,
    pcal: f64,
    io: f64,
    io_encode: f64,
    io_decode: f64,
    /// Decode time hidden behind PCheck by the decode-ahead pipeline
    /// (`time.io.decode_overlap`); at jobs 1 this is what the zero-copy
    /// pipelining saves off the critical path.
    io_decode_overlap: f64,
    pcheck: f64,
}

#[derive(Serialize)]
struct JobsResult {
    jobs: usize,
    wall_ms: f64,
    speedup_vs_1: f64,
    phases_ms: PhasesMs,
    steals: u64,
    validations: usize,
    failures: usize,
}

#[derive(Serialize)]
struct FormatStats {
    format: String,
    bytes: u64,
    bytes_vs_json: f64,
    encode_ms: f64,
    decode_ms: f64,
}

#[derive(Serialize)]
struct CacheRun {
    wall_ms: f64,
    hits: u64,
    misses: u64,
}

#[derive(Serialize)]
struct CacheBench {
    jobs: usize,
    cold: CacheRun,
    warm: CacheRun,
    warm_over_cold_wall: f64,
}

/// Pure-interpreter throughput for one tier over the kernel corpus.
#[derive(Serialize)]
struct TierExec {
    tier: String,
    /// `main` invocations timed (kernels × repeat runs).
    runs: u64,
    /// Interpreter steps executed; identical across tiers by parity.
    steps: u64,
    wall_ms: f64,
    /// Steps per second. Equal step counts make the cross-tier ratio a
    /// pure measure of dispatch cost.
    exec_per_s: f64,
}

#[derive(Serialize)]
struct FuzzBench {
    seeds: u64,
    steps: u64,
    wall_ms: f64,
    exec_per_s: f64,
    verdicts: std::collections::BTreeMap<String, u64>,
    /// Per-tier interpreter throughput (tree, then bytecode), measured
    /// with compilation hoisted out of the timed region.
    interp_tiers: Vec<TierExec>,
    /// Bytecode exec/s over tree exec/s — the tiering win the bytecode
    /// interpreter exists to deliver (target ≥5×).
    interp_bc_over_tree: f64,
}

#[derive(Serialize)]
struct BenchOutput {
    available_parallelism: usize,
    corpus_modules: usize,
    corpus_functions: usize,
    reps: usize,
    wire_format: String,
    intern_hits: u64,
    intern_misses: u64,
    intern_hit_rate: f64,
    results: Vec<JobsResult>,
    proof_io: Vec<FormatStats>,
    cache: CacheBench,
    fuzz: FuzzBench,
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Output path for an artifact: the env override verbatim, else
/// `default_name` at the workspace root (cargo runs benches with the
/// package directory as cwd, which is not where the committed artifacts
/// live).
fn out_path(env_name: &str, default_name: &str) -> std::path::PathBuf {
    match std::env::var(env_name) {
        Ok(p) => std::path::PathBuf::from(p),
        Err(_) => Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(default_name),
    }
}

/// Run `f` `reps` times and keep the rep with the median wall time, so
/// one descheduled rep cannot masquerade as a regression. The first
/// element of `f`'s result must be the wall time in ms.
fn median_rep<T>(reps: usize, mut f: impl FnMut() -> (f64, T)) -> (f64, T) {
    let mut runs: Vec<(f64, T)> = (0..reps.max(1)).map(|_| f()).collect();
    runs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    let mid = runs.len() / 2;
    runs.swap_remove(mid)
}

fn timer_ms(snap: &Snapshot, name: &str) -> f64 {
    snap.timers
        .get(name)
        .map_or(0.0, |t| t.total_nanos as f64 / 1e6)
}

fn corpus() -> Vec<crellvm_ir::Module> {
    let modules: usize = std::env::var("CRELLVM_BENCH_MODULES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    (0..modules)
        .map(|k| {
            generate_module(&GenConfig {
                seed: 0xbe9c + k as u64,
                functions: 16,
                ..GenConfig::default()
            })
        })
        .collect()
}

/// Corpus for the interpreter-tier microbench: generated modules from
/// the same generator family the fuzz campaign executes. The bytecode
/// tier exists to make the oracle's refinement legs cheap, so its
/// speedup is measured on the oracle's own workload, not on synthetic
/// kernels (those live in `tests/tier_differential.rs` as parity
/// regressions).
fn interp_corpus() -> Vec<crellvm_ir::Module> {
    let modules = env_usize("CRELLVM_BENCH_INTERP_MODULES", 8);
    (0..modules)
        .map(|k| {
            generate_module(&GenConfig {
                seed: 0x7e57 + k as u64,
                // The fuzz campaign's own shape (CampaignConfig::default).
                functions: 3,
                ..GenConfig::default()
            })
        })
        .collect()
}

fn run_once(
    modules: &[crellvm_ir::Module],
    jobs: usize,
    cache: Option<&Arc<ValidationCache>>,
) -> (f64, PipelineReport, Snapshot) {
    let tel = Telemetry::disabled();
    let opts = ParallelOptions {
        jobs,
        cache: cache.map(Arc::clone),
        ..ParallelOptions::default()
    };
    let config = PassConfig::default();
    let mut merged = PipelineReport::default();
    let t = Instant::now();
    for m in modules {
        let (_, report) = run_pipeline_parallel(m, &config, &opts, &tel);
        merged.merge(report);
    }
    let wall = ms(t.elapsed());
    (wall, merged, tel.registry().snapshot())
}

/// Every proof unit the pipeline produces over the corpus, for the
/// format-comparison section.
fn collect_proofs(modules: &[crellvm_ir::Module]) -> Vec<ProofUnit> {
    let tel = Telemetry::disabled();
    let opts = ParallelOptions::with_jobs(default_jobs());
    let config = PassConfig::default();
    let checker = CheckerConfig::sound();
    let mut proofs = Vec::new();
    for m in modules {
        let mut cur = m.clone();
        for pass in ["mem2reg", "instcombine", "gvn", "licm"] {
            let mut report = PipelineReport::default();
            let out = run_validated_pass_parallel(
                pass,
                &cur,
                &config,
                &checker,
                &opts,
                &tel,
                &mut report,
            );
            proofs.extend(out.proofs);
            cur = out.module;
        }
    }
    proofs
}

fn format_stats(proofs: &[ProofUnit], json_bytes: u64, format: ProofFormat) -> FormatStats {
    let mut scratch = CodecScratch::default();
    let mut bytes = 0u64;
    let mut blobs: Vec<Vec<u8>> = Vec::with_capacity(proofs.len());
    let t = Instant::now();
    for unit in proofs {
        let n = format.encode_into(unit, &mut scratch);
        bytes += n as u64;
        blobs.push(scratch.buf.clone());
    }
    let encode_ms = ms(t.elapsed());
    let t = Instant::now();
    for blob in &blobs {
        let unit = match format {
            ProofFormat::Json => {
                proof_from_json(std::str::from_utf8(blob).expect("json is utf-8")).expect("decodes")
            }
            _ => proof_from_bytes(blob).expect("decodes"),
        };
        std::hint::black_box(&unit);
    }
    let decode_ms = ms(t.elapsed());
    FormatStats {
        format: format.name().to_string(),
        bytes,
        bytes_vs_json: bytes as f64 / json_bytes.max(1) as f64,
        encode_ms,
        decode_ms,
    }
}

fn main() {
    let modules = corpus();
    let n_functions: usize = modules.iter().map(|m| m.functions.len()).sum();
    let reps = env_usize("CRELLVM_BENCH_REPS", 3);

    // Warm-up: touch every code path once so the first timed run does not
    // pay one-time costs (lazy page-ins, allocator growth).
    let _ = run_once(&modules, default_jobs(), None);

    let mut thread_counts = vec![1, 2, 4, default_jobs()];
    thread_counts.sort_unstable();
    thread_counts.dedup();

    let mut results: Vec<JobsResult> = Vec::new();
    let mut intern = (0u64, 0u64);
    let mut wall_1 = f64::NAN;
    println!(
        "{:>5} {:>10} {:>8}   {:>8} {:>8} {:>8} {:>8} {:>7}",
        "jobs", "wall(ms)", "speedup", "Orig", "PCal", "I-O", "PCheck", "steals"
    );
    for &jobs in &thread_counts {
        let (wall, (report, snap)) = median_rep(reps, || {
            let (wall, report, snap) = run_once(&modules, jobs, None);
            (wall, (report, snap))
        });
        if jobs == 1 {
            wall_1 = wall;
        }
        let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
        intern = (counter("expr.intern.hits"), counter("expr.intern.misses"));
        let steals: u64 = snap
            .counters
            .iter()
            .filter(|(k, _)| k.starts_with("validate.steal."))
            .map(|(_, v)| *v)
            .sum();
        let speedup = wall_1 / wall;
        println!(
            "{jobs:>5} {wall:>10.2} {speedup:>7.2}x   {:>8.2} {:>8.2} {:>8.2} {:>8.2} {steals:>7}",
            ms(report.time_orig),
            ms(report.time_pcal),
            ms(report.time_io),
            ms(report.time_pcheck),
        );
        results.push(JobsResult {
            jobs,
            wall_ms: wall,
            speedup_vs_1: speedup,
            phases_ms: PhasesMs {
                orig: ms(report.time_orig),
                pcal: ms(report.time_pcal),
                io: ms(report.time_io),
                io_encode: timer_ms(&snap, "time.io.encode"),
                io_decode: timer_ms(&snap, "time.io.decode"),
                io_decode_overlap: timer_ms(&snap, "time.io.decode_overlap"),
                pcheck: ms(report.time_pcheck),
            },
            steals,
            validations: report.validations(),
            failures: report.failures(),
        });
    }

    // Wire-format comparison on the same proof corpus.
    let proofs = collect_proofs(&modules);
    let json_bytes: u64 = proofs
        .iter()
        .map(|u| proof_to_json(u).expect("encodes").len() as u64)
        .sum();
    let proof_io: Vec<FormatStats> = [
        ProofFormat::Json,
        ProofFormat::BinaryV1,
        ProofFormat::Binary,
    ]
    .into_iter()
    .map(|f| format_stats(&proofs, json_bytes, f))
    .collect();
    // Sanity anchor: v1 measured through the direct API must agree.
    let v1_direct: u64 = proofs
        .iter()
        .map(|u| proof_to_bytes(u).expect("encodes").len() as u64)
        .sum();
    assert_eq!(proof_io[1].bytes, v1_direct);
    println!(
        "\n{:>10} {:>10} {:>9} {:>11} {:>11}",
        "format", "bytes", "vs json", "encode(ms)", "decode(ms)"
    );
    for f in &proof_io {
        println!(
            "{:>10} {:>10} {:>8.1}% {:>11.2} {:>11.2}",
            f.format,
            f.bytes,
            100.0 * f.bytes_vs_json,
            f.encode_ms,
            f.decode_ms
        );
    }

    // Cold-versus-warm cached run over a fresh on-disk cache directory.
    // The cold leg is inherently once-only (the first run fills the
    // cache); the warm leg takes the median rep.
    let cache_dir =
        std::env::temp_dir().join(format!("crellvm_bench_cache_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let jobs = default_jobs();
    let cache_stats = {
        let cache = Arc::new(ValidationCache::with_dir(&cache_dir).expect("cache dir"));
        let (cold_wall, _, cold_snap) = run_once(&modules, jobs, Some(&cache));
        let (warm_wall, warm_snap) = median_rep(reps, || {
            let (wall, _, snap) = run_once(&modules, jobs, Some(&cache));
            (wall, snap)
        });
        let counter = |s: &Snapshot, n: &str| s.counters.get(n).copied().unwrap_or(0);
        CacheBench {
            jobs,
            cold: CacheRun {
                wall_ms: cold_wall,
                hits: counter(&cold_snap, "cache.hits"),
                misses: counter(&cold_snap, "cache.misses"),
            },
            warm: CacheRun {
                wall_ms: warm_wall,
                hits: counter(&warm_snap, "cache.hits"),
                misses: counter(&warm_snap, "cache.misses"),
            },
            warm_over_cold_wall: warm_wall / cold_wall,
        }
    };
    let _ = std::fs::remove_dir_all(&cache_dir);
    println!(
        "\ncache: cold {:.2} ms ({} misses) -> warm {:.2} ms ({} hits), warm/cold = {:.2}",
        cache_stats.cold.wall_ms,
        cache_stats.cold.misses,
        cache_stats.warm.wall_ms,
        cache_stats.warm.hits,
        cache_stats.warm_over_cold_wall
    );

    // Small fuzz campaign for the oracle-throughput axis. One oracle step
    // is one (program, pass) three-way comparison, so steps/second is the
    // fuzzer's exec/s.
    let fuzz_seeds = env_usize("CRELLVM_BENCH_FUZZ_SEEDS", 16) as u64;
    let fuzz_cfg = CampaignConfig {
        seed_start: 0,
        seed_end: fuzz_seeds,
        mutate_rate: 0.25,
        ..CampaignConfig::default()
    };
    let (fuzz_wall, fuzz_report) = median_rep(reps, || {
        let tel = Telemetry::disabled();
        let t = Instant::now();
        let report = run_campaign(&fuzz_cfg, &tel);
        (ms(t.elapsed()), report)
    });
    // Interpreter-tier microbench: the same corpus under each tier,
    // compilation hoisted out of the timed region. Tier parity makes the
    // step counts identical, so the exec/s ratio is pure dispatch speed.
    let kernels = interp_corpus();
    let kernels_bc: Vec<_> = kernels.iter().map(compile_module).collect();
    let interp_runs = env_usize("CRELLVM_BENCH_INTERP_RUNS", 8) as u64;
    let run_tier = |tier: Tier| -> TierExec {
        let cfg = RunConfig {
            tier,
            fuel: 1_000_000,
            ..RunConfig::default()
        };
        let (wall, steps) = median_rep(reps, || {
            let mut steps = 0u64;
            let t = Instant::now();
            for _ in 0..interp_runs {
                for (m, bc) in kernels.iter().zip(&kernels_bc) {
                    steps += run_main_tiered(m, &cfg, Some(bc)).result.steps;
                }
            }
            (ms(t.elapsed()), steps)
        });
        TierExec {
            tier: tier.name().to_string(),
            runs: interp_runs * kernels.len() as u64,
            steps,
            wall_ms: wall,
            exec_per_s: steps as f64 / (wall / 1e3).max(1e-9),
        }
    };
    let tier_tree = run_tier(Tier::Tree);
    let tier_bc = run_tier(Tier::Bytecode);
    assert_eq!(
        tier_tree.steps, tier_bc.steps,
        "tier parity: both tiers must execute identical step counts"
    );
    let interp_bc_over_tree = tier_bc.exec_per_s / tier_tree.exec_per_s.max(1e-9);
    println!(
        "\ninterp: tree {:.0} exec/s, bytecode {:.0} exec/s ({:.2}x) over {} runs",
        tier_tree.exec_per_s, tier_bc.exec_per_s, interp_bc_over_tree, tier_tree.runs
    );

    let fuzz = FuzzBench {
        seeds: fuzz_seeds,
        steps: fuzz_report.steps,
        wall_ms: fuzz_wall,
        exec_per_s: fuzz_report.steps as f64 / (fuzz_wall / 1e3).max(1e-9),
        verdicts: fuzz_report.verdicts.clone(),
        interp_tiers: vec![tier_tree, tier_bc],
        interp_bc_over_tree,
    };
    println!(
        "fuzz: {} seeds, {} steps in {:.2} ms -> {:.0} exec/s",
        fuzz.seeds, fuzz.steps, fuzz.wall_ms, fuzz.exec_per_s
    );

    let (hits, misses) = intern;
    let output = BenchOutput {
        available_parallelism: default_jobs(),
        corpus_modules: modules.len(),
        corpus_functions: n_functions,
        reps,
        wire_format: ProofFormat::default().name().to_string(),
        intern_hits: hits,
        intern_misses: misses,
        intern_hit_rate: hits as f64 / (hits + misses).max(1) as f64,
        results,
        proof_io,
        cache: cache_stats,
        fuzz,
    };
    let path = out_path("CRELLVM_BENCH_OUT", "BENCH_validate.json");
    write_pretty(&path, &output);
    println!(
        "\ninterner: {hits} hits / {misses} misses ({:.1}% hit rate)",
        100.0 * output.intern_hit_rate
    );
    println!("wrote {}", path.display());

    let fuzz_path = out_path("CRELLVM_BENCH_FUZZ_OUT", "BENCH_fuzz.json");
    write_pretty(&fuzz_path, &output.fuzz);
    println!("wrote {}", fuzz_path.display());

    // Append this run to the bench history for the regression sentinel.
    let history_path = out_path("CRELLVM_BENCH_HISTORY", "BENCH_history.jsonl");
    let record = history_record(&output);
    history::append(&history_path, &record).expect("append bench history");
    println!(
        "appended {} ({} metrics)",
        history_path.display(),
        record.metrics.len()
    );
}

/// Serialize pretty and write atomically.
fn write_pretty<T: Serialize>(path: &Path, value: &T) {
    let compact = serde_json::to_string(value).expect("serialize bench output");
    history::write_atomic(path, &history::pretty(&compact)).expect("write bench output");
}

/// Flatten the structured output into the sentinel's `metric → value`
/// record. Provenance comes from the harness via `CRELLVM_GIT_SHA` and
/// `CRELLVM_BENCH_TIMESTAMP` (the bench itself stays clock-free for
/// provenance so reruns at one commit produce comparable records).
fn history_record(out: &BenchOutput) -> HistoryRecord {
    let sha = std::env::var("CRELLVM_GIT_SHA").unwrap_or_else(|_| "unknown".to_string());
    let ts = std::env::var("CRELLVM_BENCH_TIMESTAMP").unwrap_or_else(|_| "unknown".to_string());
    let mut rec = HistoryRecord::new(&sha, &ts, out.available_parallelism, &out.wire_format);
    for r in &out.results {
        let j = format!("j{}", r.jobs);
        rec.metric(&format!("wall_ms.{j}"), r.wall_ms);
        // Phase times are summed CPU time across workers; at jobs > 1 on
        // an oversubscribed host they measure scheduling luck, not the
        // checker. Only the single-worker phases are stable enough to
        // gate on.
        if r.jobs == 1 {
            rec.metric(&format!("orig_ms.{j}"), r.phases_ms.orig);
            rec.metric(&format!("pcal_ms.{j}"), r.phases_ms.pcal);
            rec.metric(&format!("io_ms.{j}"), r.phases_ms.io);
            rec.metric(&format!("io_encode_ms.{j}"), r.phases_ms.io_encode);
            rec.metric(&format!("io_decode_ms.{j}"), r.phases_ms.io_decode);
            rec.metric(
                &format!("io_decode_overlap_ms.{j}"),
                r.phases_ms.io_decode_overlap,
            );
            rec.metric(&format!("pcheck_ms.{j}"), r.phases_ms.pcheck);
        }
    }
    if let Some(best) = out.results.last() {
        rec.metric("speedup.jmax", best.speedup_vs_1);
    }
    rec.metric("intern_hit_rate", out.intern_hit_rate);
    for f in &out.proof_io {
        rec.metric(&format!("proof_bytes.{}", f.format), f.bytes as f64);
    }
    rec.metric("cache.warm_over_cold", out.cache.warm_over_cold_wall);
    let warm = &out.cache.warm;
    rec.metric(
        "cache.warm_hit_rate",
        warm.hits as f64 / (warm.hits + warm.misses).max(1) as f64,
    );
    rec.metric("fuzz.exec_per_s", out.fuzz.exec_per_s);
    // Per-tier interpreter throughput; "exec_per_s" in the name makes
    // the sentinel treat both as higher-is-better.
    for t in &out.fuzz.interp_tiers {
        let key = match t.tier.as_str() {
            "bytecode" => "bc",
            other => other,
        };
        rec.metric(&format!("fuzz.exec_per_s.{key}"), t.exec_per_s);
    }
    rec
}
