//! The parallel-validation-engine benchmark: full-pipeline wall time at
//! several worker counts over a generated corpus, emitting
//! `BENCH_validate.json` (override the path with `CRELLVM_BENCH_OUT`).
//!
//! Reported per worker count: wall time, the four Fig 6/8 phase columns
//! (Orig/PCal/I-O/PCheck), speedup versus one worker, and steal totals;
//! plus the expression-interner hit rate, the proxy for allocations the
//! hash-consing arena saves the checker hot path.
//!
//! The ≥2× speedup target assumes ≥4 available cores; the JSON records
//! `available_parallelism` so results from throttled CI runners (often a
//! single core, where speedup is necessarily ~1×) read correctly.

use crellvm_gen::{generate_module, GenConfig};
use crellvm_passes::{
    default_jobs, run_pipeline_parallel, ParallelOptions, PassConfig, PipelineReport, ProofFormat,
};
use crellvm_telemetry::Telemetry;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct PhasesMs {
    orig: f64,
    pcal: f64,
    io: f64,
    pcheck: f64,
}

#[derive(Serialize)]
struct JobsResult {
    jobs: usize,
    wall_ms: f64,
    speedup_vs_1: f64,
    phases_ms: PhasesMs,
    steals: u64,
    validations: usize,
    failures: usize,
}

#[derive(Serialize)]
struct BenchOutput {
    available_parallelism: usize,
    corpus_modules: usize,
    corpus_functions: usize,
    intern_hits: u64,
    intern_misses: u64,
    intern_hit_rate: f64,
    results: Vec<JobsResult>,
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn corpus() -> Vec<crellvm_ir::Module> {
    let modules: usize = std::env::var("CRELLVM_BENCH_MODULES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    (0..modules)
        .map(|k| {
            generate_module(&GenConfig {
                seed: 0xbe9c + k as u64,
                functions: 16,
                ..GenConfig::default()
            })
        })
        .collect()
}

fn run_once(modules: &[crellvm_ir::Module], jobs: usize) -> (f64, PipelineReport, u64, u64, u64) {
    let tel = Telemetry::disabled();
    let opts = ParallelOptions {
        jobs,
        format: ProofFormat::Json,
        ..ParallelOptions::default()
    };
    let config = PassConfig::default();
    let mut merged = PipelineReport::default();
    let t = Instant::now();
    for m in modules {
        let (_, report) = run_pipeline_parallel(m, &config, &opts, &tel);
        merged.merge(report);
    }
    let wall = ms(t.elapsed());
    let snap = tel.registry().snapshot();
    let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    let steals = snap
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("validate.steal."))
        .map(|(_, v)| *v)
        .sum();
    (
        wall,
        merged,
        counter("expr.intern.hits"),
        counter("expr.intern.misses"),
        steals,
    )
}

fn main() {
    let modules = corpus();
    let n_functions: usize = modules.iter().map(|m| m.functions.len()).sum();

    // Warm-up: touch every code path once so the first timed run does not
    // pay one-time costs (lazy page-ins, allocator growth).
    let _ = run_once(&modules, default_jobs());

    let mut thread_counts = vec![1, 2, 4, default_jobs()];
    thread_counts.sort_unstable();
    thread_counts.dedup();

    let mut results: Vec<JobsResult> = Vec::new();
    let mut intern = (0u64, 0u64);
    let mut wall_1 = f64::NAN;
    println!(
        "{:>5} {:>10} {:>8}   {:>8} {:>8} {:>8} {:>8} {:>7}",
        "jobs", "wall(ms)", "speedup", "Orig", "PCal", "I-O", "PCheck", "steals"
    );
    for &jobs in &thread_counts {
        let (wall, report, hits, misses, steals) = run_once(&modules, jobs);
        if jobs == 1 {
            wall_1 = wall;
        }
        intern = (hits, misses);
        let speedup = wall_1 / wall;
        println!(
            "{jobs:>5} {wall:>10.2} {speedup:>7.2}x   {:>8.2} {:>8.2} {:>8.2} {:>8.2} {steals:>7}",
            ms(report.time_orig),
            ms(report.time_pcal),
            ms(report.time_io),
            ms(report.time_pcheck),
        );
        results.push(JobsResult {
            jobs,
            wall_ms: wall,
            speedup_vs_1: speedup,
            phases_ms: PhasesMs {
                orig: ms(report.time_orig),
                pcal: ms(report.time_pcal),
                io: ms(report.time_io),
                pcheck: ms(report.time_pcheck),
            },
            steals,
            validations: report.validations(),
            failures: report.failures(),
        });
    }

    let (hits, misses) = intern;
    let output = BenchOutput {
        available_parallelism: default_jobs(),
        corpus_modules: modules.len(),
        corpus_functions: n_functions,
        intern_hits: hits,
        intern_misses: misses,
        intern_hit_rate: hits as f64 / (hits + misses).max(1) as f64,
        results,
    };
    let path =
        std::env::var("CRELLVM_BENCH_OUT").unwrap_or_else(|_| "BENCH_validate.json".to_string());
    let json = serde_json::to_string(&output).expect("serialize bench output");
    std::fs::write(&path, &json).expect("write bench output");
    println!(
        "\ninterner: {hits} hits / {misses} misses ({:.1}% hit rate)",
        100.0 * output.intern_hit_rate
    );
    println!("wrote {path}");
}
