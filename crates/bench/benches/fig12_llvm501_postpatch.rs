//! Figs 12–14 — LLVM 5.0.1 *after* the GVN patch: no failures remain.

use crellvm_bench::experiment::{default_scale, run_corpus_experiment};
use crellvm_bench::tables;
use crellvm_passes::{BugSet, PassConfig};

fn main() {
    let scale = default_scale();
    let config = PassConfig::with_bugs(BugSet::llvm_5_0_1_postpatch());
    let r = run_corpus_experiment(scale, 4, &config);
    print!(
        "{}",
        tables::summary(
            &format!("Fig 12 — LLVM 5.0.1 after the GVN patch (scale {scale} fn/KLoC)"),
            &r
        )
    );
    println!();
    print!(
        "{}",
        tables::per_benchmark_results("Fig 13 — per-benchmark results", &r)
    );
    println!();
    print!(
        "{}",
        tables::per_benchmark_times("Fig 14 — per-benchmark times", &r)
    );
    let total_f: usize = ["mem2reg", "gvn", "licm", "instcombine"]
        .iter()
        .map(|p| r.total(p).failures)
        .sum();
    println!("\ntotal #F = {total_f} (paper: 0 after the patch)");
    assert_eq!(total_f, 0, "the fixed compiler must produce no failures");
}
