//! Ablation: JSON vs binary proof wire format, end-to-end through the
//! validated pipeline.
//!
//! The paper ships JSON proofs and reports I/O as a dominant cost column
//! (Fig 6/8); its §7 notes the overhead "will be much smaller if we … use
//! binary instead of JSON format for proofs". This bench runs the same
//! corpus through both formats and reports the I/O time and wire size
//! each produces — every verdict must be identical.

use crellvm_core::CheckerConfig;
use crellvm_gen::{generate_module, GenConfig};
use crellvm_passes::pipeline::{run_validated_pass_with, PipelineReport, PASS_ORDER};
use crellvm_passes::{PassConfig, ProofFormat};

fn run(format: ProofFormat, seeds: u64) -> PipelineReport {
    let config = PassConfig::default();
    let checker = CheckerConfig::sound();
    let mut report = PipelineReport::default();
    for seed in 0..seeds {
        let mut m = generate_module(&GenConfig {
            seed,
            functions: 3,
            ..GenConfig::default()
        });
        for pass in PASS_ORDER {
            m = run_validated_pass_with(pass, &m, &config, &checker, format, &mut report);
        }
    }
    report
}

fn main() {
    let seeds: u64 = std::env::var("CRELLVM_CSMITH_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40);
    let json = run(ProofFormat::Json, seeds);
    let bin = run(ProofFormat::Binary, seeds);

    // Outcomes must be bit-for-bit identical — the format carries the
    // same proof.
    assert_eq!(json.steps.len(), bin.steps.len(), "step counts differ");
    for (a, b) in json.steps.iter().zip(&bin.steps) {
        assert_eq!(
            a.outcome, b.outcome,
            "verdict differs at @{} ({})",
            a.func, a.pass
        );
    }

    let jbytes: usize = json.steps.iter().map(|s| s.proof_bytes).sum();
    let bbytes: usize = bin.steps.iter().map(|s| s.proof_bytes).sum();
    println!(
        "Ablation — proof wire format ({} modules, {} validations)\n",
        seeds,
        json.steps.len()
    );
    println!(
        "{:<10}{:>14}{:>16}",
        "format", "I/O time (ms)", "wire bytes"
    );
    println!(
        "{:<10}{:>14.2}{:>16}",
        "json",
        json.time_io.as_secs_f64() * 1e3,
        jbytes
    );
    println!(
        "{:<10}{:>14.2}{:>16}",
        "binary",
        bin.time_io.as_secs_f64() * 1e3,
        bbytes
    );
    println!(
        "\nbinary is {:.1}x smaller and {:.1}x faster on the I/O column (verdicts identical)",
        jbytes as f64 / bbytes as f64,
        json.time_io.as_secs_f64() / bin.time_io.as_secs_f64(),
    );
}
