//! Fig 7 — validation results per benchmark (LLVM 3.7.1 bug population).

use crellvm_bench::experiment::{default_scale, run_corpus_experiment};
use crellvm_bench::tables;
use crellvm_passes::{BugSet, PassConfig};

fn main() {
    let scale = default_scale();
    let config = PassConfig::with_bugs(BugSet::llvm_3_7_1());
    let r = run_corpus_experiment(scale, 4, &config);
    print!(
        "{}",
        tables::per_benchmark_results(
            &format!("Fig 7 — validation results per benchmark (scale {scale} fn/KLoC)"),
            &r
        )
    );
}
