//! Figs 9–11 — the LLVM 5.0.1 port *before* the GVN patch: mem2reg is
//! fixed, the D38619-style PRE bug remains.

use crellvm_bench::experiment::{default_scale, run_corpus_experiment};
use crellvm_bench::tables;
use crellvm_passes::{BugSet, PassConfig};

fn main() {
    let scale = default_scale();
    let config = PassConfig::with_bugs(BugSet::llvm_5_0_1_prepatch());
    let r = run_corpus_experiment(scale, 4, &config);
    print!(
        "{}",
        tables::summary(
            &format!("Fig 9 — LLVM 5.0.1 before the GVN patch (scale {scale} fn/KLoC)"),
            &r
        )
    );
    println!();
    print!(
        "{}",
        tables::per_benchmark_results("Fig 10 — per-benchmark results", &r)
    );
    println!();
    print!(
        "{}",
        tables::per_benchmark_times("Fig 11 — per-benchmark times", &r)
    );
    println!("\n(paper shape: mem2reg #F drops to 0, gvn retains 134 PRE failures.)");
}
