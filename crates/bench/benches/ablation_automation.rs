//! Ablation: how much work do the automation functions do? (§6:
//! "automation … made the code size less than half and sped it up more
//! than twice" — here we measure the validation side: proofs with their
//! `Auto(…)` hints stripped must fail in droves, because the explicit
//! rules only cover what automation cannot find.)

use crellvm_core::{validate, ProofUnit, Verdict};
use crellvm_gen::{generate_module, GenConfig};
use crellvm_passes::{gvn, instcombine, licm, mem2reg, PassConfig};

fn strip_autos(mut u: ProofUnit) -> ProofUnit {
    u.autos.clear();
    u
}

fn main() {
    let mut with_autos = [0usize, 0];
    let mut without = [0usize, 0];
    let mut per_pass: std::collections::BTreeMap<String, (usize, usize)> = Default::default();
    for seed in 0..40u64 {
        let m = generate_module(&GenConfig {
            seed,
            functions: 3,
            ..GenConfig::default()
        });
        for out in [
            mem2reg(&m, &PassConfig::default()),
            gvn(&m, &PassConfig::default()),
            licm(&m, &PassConfig::default()),
            instcombine(&m, &PassConfig::default()),
        ] {
            for u in out.proofs {
                if u.not_supported.is_some() {
                    continue;
                }
                let pass = u.pass.clone();
                let ok_full = validate(&u) == Ok(Verdict::Valid);
                let ok_stripped = validate(&strip_autos(u)) == Ok(Verdict::Valid);
                with_autos[usize::from(!ok_full)] += 1;
                without[usize::from(!ok_stripped)] += 1;
                let e = per_pass.entry(pass).or_default();
                e.0 += usize::from(ok_full);
                e.1 += usize::from(ok_stripped);
            }
        }
    }
    println!("Ablation — validation with and without automation functions");
    println!(
        "{:<14} {:>14} {:>18}",
        "pass", "valid (full)", "valid (no autos)"
    );
    for (pass, (full, stripped)) in &per_pass {
        println!("{:<14} {:>14} {:>18}", pass, full, stripped);
    }
    println!(
        "\ntotals: {}/{} valid with automation, {}/{} without",
        with_autos[0],
        with_autos[0] + with_autos[1],
        without[0],
        without[0] + without[1]
    );
    println!("(the gap is the proof mass the automation derives: transitivity");
    println!(" chains, maydiff reductions, and operand substitutions)");
    assert_eq!(with_autos[1], 0, "fully-equipped proofs must all validate");
    assert!(
        without[0] < with_autos[0],
        "stripping automation must cost validations"
    );
}
