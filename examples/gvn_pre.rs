//! The paper's Fig 15 (§C): partial redundancy elimination with three
//! kinds of edge availability — a register leader, a fresh insertion, and
//! a branch-implied constant (the BCT table, propagated through the empty
//! block) — all justified in one generated proof.
//!
//! ```text
//! cargo run --example gvn_pre
//! ```

use crellvm::erhl::{validate, InfRule, Verdict};
use crellvm::interp::{check_refinement, run_main, RunConfig};
use crellvm::ir::parse_module;
use crellvm::passes::{gvn, PassConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let src = parse_module(
        r#"
        declare @print(i32)
        define @main(i32 %n, i1 %c1) {
        entry:
          %x1 = sub i32 %n, 2
          br i1 %c1, label left, label right
        left:
          %y1 = add i32 %x1, 1
          %c2 = icmp eq i32 %y1, 10
          br i1 %c2, label empty, label other
        empty:
          br label exit
        other:
          call void @print(i32 1)
          br label exit
        right:
          %x2 = sub i32 %n, 2
          %y2 = add i32 %x2, 1
          call void @print(i32 %y2)
          br label exit
        exit:
          %y3 = add i32 %x1, 1
          call void @print(i32 %y3)
          ret void
        }
        "#,
    )?;
    println!("=== source (Fig 15) ===\n{src}");

    let out = gvn(&src, &PassConfig::default());
    println!("=== after gvn + PRE ===\n{}", out.module);

    for unit in &out.proofs {
        if unit.src.name != "main" {
            continue;
        }
        let mut ghosts = 0;
        let mut icmp_to_eq = 0;
        let mut substitutions = 0;
        for rule in unit.infrules.values().flatten() {
            match rule {
                InfRule::IntroGhost { .. } => ghosts += 1,
                InfRule::IcmpToEq { .. } => icmp_to_eq += 1,
                InfRule::Substitute { .. } | InfRule::SubstituteRev { .. } => substitutions += 1,
                _ => {}
            }
        }
        println!(
            "proof: {ghosts} intro_ghost, {icmp_to_eq} icmp_to_eq (branching assertions), {substitutions} substitutions"
        );
        match validate(unit)? {
            Verdict::Valid => println!("=> validated"),
            Verdict::NotSupported(r) => println!("=> not supported: {r}"),
        }
    }

    let rc = RunConfig::default();
    check_refinement(&run_main(&src, &rc), &run_main(&out.module, &rc))?;
    println!("differential run: behaviour preserved");
    Ok(())
}
