//! Validate a whole `-O2`-style pipeline over a randomly generated module
//! (the per-program slice of the paper's §7 experiment).
//!
//! ```text
//! cargo run --example pipeline_validate          # seed 42
//! cargo run --example pipeline_validate -- 1234  # custom seed
//! ```

use crellvm::gen::{generate_module, GenConfig};
use crellvm::interp::{check_refinement, run_main, RunConfig};
use crellvm::passes::pipeline::{run_pipeline, StepOutcome};
use crellvm::passes::PassConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(42);
    let cfg = GenConfig {
        seed,
        functions: 4,
        unsupported_rate: 0.15,
        ..GenConfig::default()
    };
    let module = generate_module(&cfg);
    println!(
        "generated module (seed {seed}): {} functions",
        module.functions.len()
    );

    let (optimized, report) = run_pipeline(&module, &PassConfig::default());

    println!(
        "\n{:<14} {:<10} {:<14} {:>10}",
        "pass", "function", "outcome", "proof (B)"
    );
    for step in &report.steps {
        let outcome = match &step.outcome {
            StepOutcome::Valid => "valid".to_string(),
            StepOutcome::Failed(_) => "FAILED".to_string(),
            StepOutcome::NotSupported(_) => "not-supported".to_string(),
        };
        println!(
            "{:<14} {:<10} {:<14} {:>10}",
            step.pass, step.func, outcome, step.proof_bytes
        );
    }
    println!(
        "\n#V = {}   #F = {}   #NS = {}",
        report.validations(),
        report.failures(),
        report.not_supported()
    );
    println!(
        "Orig = {:?}   PCal = {:?}   I/O = {:?}   PCheck = {:?}",
        report.time_orig, report.time_pcal, report.time_io, report.time_pcheck
    );

    let before = module.function("main").unwrap().stmt_count();
    let after = optimized.function("main").unwrap().stmt_count();
    println!("main: {before} statements before, {after} after");

    let rc = RunConfig::default();
    let a = run_main(&module, &rc);
    let b = run_main(&optimized, &rc);
    check_refinement(&a, &b)?;
    println!(
        "differential run: {} observable events, behaviour preserved",
        b.events.len()
    );
    Ok(())
}
