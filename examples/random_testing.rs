//! The paper's §7 workflow as a user would run it: a random-testing
//! campaign over generated programs, validating every translation of
//! every pass under a chosen compiler version — the CSmith experiment in
//! miniature, now riding directly on the fuzzing engine's campaign API
//! so this example and `crellvm fuzz` cannot drift apart.
//!
//! ```text
//! cargo run --example random_testing               # 50 programs, LLVM 3.7.1 bugs
//! cargo run --example random_testing -- 200 none   # 200 programs, fixed compiler
//! ```

use crellvm::fuzz::{run_campaign, CampaignConfig};
use crellvm::telemetry::Telemetry;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: u64 = args
        .next()
        .map_or(50, |a| a.parse().expect("program count"));
    let compiler = args.next().unwrap_or_else(|| "3.7.1".to_string());
    let bugs = CampaignConfig::bugs_for_compiler(&compiler)
        .unwrap_or_else(|| panic!("unknown compiler version {compiler}"));

    let cfg = CampaignConfig {
        seed_start: 0,
        seed_end: n,
        jobs: 0,
        // Pure random testing: no injected mutations, the campaign
        // cross-checks the honest pipeline only.
        mutate_rate: 0.0,
        bugs,
        compiler,
        ..CampaignConfig::default()
    };
    let report = run_campaign(&cfg, &Telemetry::disabled());

    println!(
        "validated {} (program, pass) translation steps for seeds {}..{} under LLVM {}",
        report.steps, report.seed_start, report.seed_end, report.compiler
    );
    for (verdict, count) in &report.verdicts {
        println!("  {verdict:<17} {count}");
    }
    if report.attributed.is_empty() {
        println!("no miscompilations detected — this compiler version is clean on this corpus");
    } else {
        println!("historical bugs caught (validation failures attributed by re-run):");
        for (bug, count) in &report.attributed {
            println!("  {bug:<10} {count} finding(s)");
        }
        if let Some(f) = report.findings.first() {
            println!("first finding: seed {} pass {} @{}", f.seed, f.pass, f.func);
            println!("  reason: {}", f.reason);
            println!("  repro:  {}", f.repro);
        }
    }
    println!(
        "rule coverage: {} inference rules fired across the campaign",
        report.rule_coverage.len()
    );
}
