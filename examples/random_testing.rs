//! The paper's §7 workflow as a user would run it: a random-testing
//! campaign over generated programs, validating every translation of
//! every pass under a chosen compiler version, and summarizing the
//! verdicts — the CSmith experiment in miniature.
//!
//! ```text
//! cargo run --example random_testing               # 50 programs, LLVM 3.7.1 bugs
//! cargo run --example random_testing -- 200 none   # 200 programs, fixed compiler
//! ```

use crellvm::gen::{generate_module, FeatureMix, GenConfig};
use crellvm::passes::pipeline::{run_pipeline, StepOutcome, PASS_ORDER};
use crellvm::passes::{BugSet, PassConfig};
use std::collections::BTreeMap;

#[derive(Default)]
struct Tally {
    valid: usize,
    failed: usize,
    not_supported: usize,
    first_failure: Option<String>,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: u64 = args
        .next()
        .map_or(50, |a| a.parse().expect("program count"));
    let bugs = match args.next().as_deref() {
        None | Some("3.7.1") => BugSet::llvm_3_7_1(),
        Some("5.0.1-pre") => BugSet::llvm_5_0_1_prepatch(),
        Some("none" | "5.0.1-post") => BugSet::llvm_5_0_1_postpatch(),
        Some(other) => panic!("unknown compiler version {other}"),
    };
    let config = PassConfig::with_bugs(bugs);

    let mut per_pass: BTreeMap<&str, Tally> =
        PASS_ORDER.iter().map(|p| (*p, Tally::default())).collect();
    for seed in 0..n {
        let m = generate_module(&GenConfig {
            seed,
            functions: 3,
            feature_mix: FeatureMix::Csmith,
            unsupported_rate: if seed % 4 == 0 { 0.3 } else { 0.0 },
            ..GenConfig::default()
        });
        let (_, report) = run_pipeline(&m, &config);
        for step in &report.steps {
            let t = per_pass.get_mut(step.pass.as_str()).expect("known pass");
            match &step.outcome {
                StepOutcome::Valid => t.valid += 1,
                StepOutcome::NotSupported(_) => t.not_supported += 1,
                StepOutcome::Failed(reason) => {
                    t.failed += 1;
                    t.first_failure
                        .get_or_insert_with(|| format!("seed {seed} @{}: {reason}", step.func));
                }
            }
        }
    }

    println!("{n} random programs, all four passes:\n");
    println!("{:<14}{:>8}{:>8}{:>8}", "pass", "#V", "#F", "#NS");
    for (pass, t) in &per_pass {
        println!(
            "{pass:<14}{:>8}{:>8}{:>8}",
            t.valid + t.failed,
            t.failed,
            t.not_supported
        );
    }
    let mut any = false;
    for (pass, t) in &per_pass {
        if let Some(f) = &t.first_failure {
            any = true;
            println!("\nfirst {pass} failure: {f}");
        }
    }
    if !any {
        println!("\nno validation failures — this compiler version is clean on this corpus");
    }
}
