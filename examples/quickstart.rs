//! Quickstart: compile a small program with the proof-generating mem2reg,
//! validate the generated ERHL proof, and inspect the result.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use crellvm::erhl::{proof_to_json, validate, Verdict};
use crellvm::interp::{check_refinement, run_main, RunConfig};
use crellvm::ir::parse_module;
use crellvm::passes::{mem2reg, PassConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let src = parse_module(
        r#"
        declare @print(i32)
        define @main(i1 %c, i32 %x) {
        entry:
          %p = alloca i32
          store i32 42, ptr %p
          br i1 %c, label left, label right
        left:
          %a = load i32, ptr %p
          call void @print(i32 %a)
          br label exit
        right:
          store i32 %x, ptr %p
          br label exit
        exit:
          %b = load i32, ptr %p
          call void @print(i32 %b)
          ret void
        }
        "#,
    )?;

    println!("=== source ===\n{src}");

    // Run the proof-generating register promotion (the paper's Fig 1
    // right-hand side: the pass emits tgt'.ll together with its proof).
    let out = mem2reg(&src, &PassConfig::default());
    println!("=== target (promoted) ===\n{}", out.module);

    for unit in &out.proofs {
        let json = proof_to_json(unit)?;
        println!(
            "proof for @{}: {} assertions, {} rule sites, {} bytes of JSON",
            unit.src.name,
            unit.assertions.len(),
            unit.infrules.len(),
            json.len()
        );
        // The verified proof checker validates the translation.
        match validate(unit)? {
            Verdict::Valid => println!("  => validated: Beh(src) ⊇ Beh(tgt)"),
            Verdict::NotSupported(reason) => println!("  => not supported: {reason}"),
        }
    }

    // Belt and braces: differential execution agrees.
    let rc = RunConfig::default();
    let a = run_main(&src, &rc);
    let b = run_main(&out.module, &rc);
    check_refinement(&a, &b)?;
    println!(
        "differential run: {} events, behaviour preserved",
        b.events.len()
    );
    Ok(())
}
