//! The compiler developer workflow of the paper (§1.1): run the
//! proof-generating compiler with each historical bug re-enabled and watch
//! validation pinpoint the miscompilation with a logical reason.
//!
//! ```text
//! cargo run --example bug_hunt
//! ```

use crellvm::erhl::validate;
use crellvm::ir::parse_module;
use crellvm::passes::{gvn, mem2reg, BugSet, PassConfig};

fn report(title: &str, proofs: &[crellvm::erhl::ProofUnit]) {
    println!("--- {title} ---");
    let mut failed = false;
    for unit in proofs {
        match validate(unit) {
            Ok(v) => println!("  @{}: {v:?}", unit.src.name),
            Err(e) => {
                failed = true;
                println!("  @{}: FAILED at {}", unit.src.name, e.at);
                println!("      reason: {}", e.reason);
            }
        }
    }
    if failed {
        println!("  => miscompilation detected (file a compiler bug!)\n");
    } else {
        println!("  => all translations validated\n");
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // PR24179: the single-block promotion bug (paper §1.2, first example).
    let loopy = parse_module(
        r#"
        declare @foo(i32)
        define @main(i32 %n) {
        entry:
          %p = alloca i32
          br label loop
        loop:
          %i = phi i32 [ 0, entry ], [ %i2, loop ]
          %r = load i32, ptr %p
          call void @foo(i32 %r)
          store i32 42, ptr %p
          %i2 = add i32 %i, 1
          %c = icmp slt i32 %i2, %n
          br i1 %c, label loop, label exit
        exit:
          ret void
        }
        "#,
    )?;
    let buggy = PassConfig::with_bugs(BugSet {
        pr24179: true,
        ..BugSet::default()
    });
    report(
        "mem2reg with PR24179 (loads before stores in a loop → undef)",
        &mem2reg(&loopy, &buggy).proofs,
    );
    report(
        "mem2reg fixed on the same program",
        &mem2reg(&loopy, &PassConfig::default()).proofs,
    );

    // PR28562/PR29057: gvn conflates gep inbounds with plain gep (§1.2,
    // second example: bar(q1, q2) becomes bar(q1, q1)).
    let geps = parse_module(
        r#"
        declare @bar(ptr, ptr)
        define @main(ptr %p) {
        entry:
          %q1 = gep inbounds ptr %p, i64 10
          %q2 = gep ptr %p, i64 10
          call void @bar(ptr %q1, ptr %q2)
          ret void
        }
        "#,
    )?;
    let buggy = PassConfig::with_bugs(BugSet {
        pr28562: true,
        ..BugSet::default()
    });
    report(
        "gvn with PR28562 (inbounds flag erased from the hash)",
        &gvn(&geps, &buggy).proofs,
    );
    report(
        "gvn fixed on the same program",
        &gvn(&geps, &PassConfig::default()).proofs,
    );

    // PR33673: a trapping constant expression propagated to a load the
    // store does not dominate (§1.1's example).
    let constexpr = parse_module(
        r#"
        global @G : i32[1]
        declare @foo(i32)
        define @main(i1 %c) {
        entry:
          %p = alloca i32
          br i1 %c, label uses, label stores
        uses:
          %r = load i32, ptr %p
          call void @foo(i32 %r)
          ret void
        stores:
          store i32 sdiv(i32 1, sub(i32 ptrtoint(@G to i32), ptrtoint(@G to i32))), ptr %p
          ret void
        }
        "#,
    )?;
    let buggy = PassConfig::with_bugs(BugSet {
        pr33673: true,
        ..BugSet::default()
    });
    report(
        "mem2reg with PR33673 (constexprs assumed trap-free)",
        &mem2reg(&constexpr, &buggy).proofs,
    );

    // D38619: PRE's branch-constant used with the wrong polarity.
    let pre = parse_module(
        r#"
        declare @print(i32)
        define @main(i32 %n, i1 %c1) {
        entry:
          br i1 %c1, label left, label right
        left:
          %w = mul i32 %n, 3
          %cmp = icmp eq i32 %w, 12
          br i1 %cmp, label other, label exit
        other:
          call void @print(i32 1)
          ret void
        right:
          %l = mul i32 %n, 3
          call void @print(i32 %l)
          br label exit
        exit:
          %x = mul i32 %n, 3
          call void @print(i32 %x)
          ret void
        }
        "#,
    )?;
    let buggy = PassConfig::with_bugs(BugSet {
        d38619: true,
        ..BugSet::default()
    });
    report(
        "gvn-PRE with D38619 (branch constant on the wrong edge)",
        &gvn(&pre, &buggy).proofs,
    );
    report(
        "gvn-PRE fixed on the same program",
        &gvn(&pre, &PassConfig::default()).proofs,
    );

    Ok(())
}
