//! The compiler developer workflow of the paper (§1.1): re-enable each
//! historical bug in turn and watch the campaign engine catch the
//! miscompilation, attribute it, and emit a replayable repro — the same
//! three-way oracle `crellvm fuzz` runs, so this walkthrough and the
//! engine cannot drift apart.
//!
//! ```text
//! cargo run --example bug_hunt
//! ```

use crellvm::fuzz::{run_campaign, CampaignConfig, FindingKind};
use crellvm::passes::BugSet;
use crellvm::telemetry::Telemetry;

/// One historical bug per row: its id (also a valid `--compiler` value,
/// so the printed repro commands replay as-is) and the paper's
/// description of the miscompilation.
const BUGS: [(&str, &str); 4] = [
    (
        "pr24179",
        "mem2reg promotes a load before the store in a loop to undef",
    ),
    (
        "pr33673",
        "mem2reg propagates a trapping constant expression (\"constants never trap\")",
    ),
    (
        "pr28562",
        "gvn erases the inbounds flag from the leader's hash",
    ),
    (
        "d38619",
        "gvn-PRE reads the branch constant off the wrong polarity edge",
    ),
];

fn main() {
    for (name, what) in BUGS {
        println!("--- {name}: {what} ---");
        let cfg = CampaignConfig {
            seed_start: 0,
            seed_end: 200,
            jobs: 0,
            // Honest pipeline only — the bug itself is the miscompiler.
            mutate_rate: 0.0,
            bugs: CampaignConfig::bugs_for_compiler(name).expect("bug id"),
            compiler: name.into(),
            ..CampaignConfig::default()
        };
        let report = run_campaign(&cfg, &Telemetry::disabled());
        let mut caught = report.findings_of(FindingKind::Rejection);
        match caught.next() {
            Some(f) => {
                println!("  miscompilation detected (file a compiler bug!)");
                println!("  seed {} pass {} @{}", f.seed, f.pass, f.func);
                println!("  reason: {}", f.reason);
                println!(
                    "  attribution: {:?}, forensic bundle: {}",
                    f.attributed_bugs,
                    if f.forensic_bundle_json.is_some() {
                        "minimized + replayable"
                    } else {
                        "none"
                    }
                );
                println!("  repro: {}", f.repro);
                println!("  (+{} more finding(s))\n", caught.count());
            }
            None => println!("  no findings — bug not exercised by this corpus?\n"),
        }

        // The fixed compiler on the same corpus must validate cleanly.
        let fixed = CampaignConfig {
            bugs: BugSet::none(),
            compiler: "fixed".into(),
            ..cfg
        };
        let clean = run_campaign(&fixed, &Telemetry::disabled());
        assert!(
            clean.findings.is_empty(),
            "fixed compiler still produced findings"
        );
        println!(
            "  fixed compiler on the same corpus: all {} steps validate\n",
            clean.steps
        );
    }
}
